"""Calibration diagnostics: per-kernel shape report against paper claims.

Run:  python tools/calibrate.py [scale] [program ...]

Reports, for each kernel:
  * LHE across DM windows at md=60 (paper Table 1 shape: high at small
    windows, dip in the middle, recovery toward the unlimited value);
  * the md=0 crossover window (SWSM overtakes) and the md=60 crossover
    (should not exist);
  * EWR at DM window 32, md=60 (paper: roughly 2-4x);
  * speedup extremes for scale sanity.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import Session, run_speedup_figure
from repro.kernels import PAPER_ORDER
from repro.metrics import find_equivalent_window
from repro.errors import ProjectionError

WINDOWS = (8, 16, 32, 64, 128, 256, None)


def main() -> None:
    args = sys.argv[1:]
    scale = int(args[0]) if args else 20_000
    programs = tuple(args[1:]) or PAPER_ORDER
    lab = Session(scale=scale)
    for name in programs:
        started = time.time()
        lhe_row = [lab.dm_lhe(name, w, 60) for w in WINDOWS]
        fig = run_speedup_figure(
            lab, name, windows=(4, 8, 16, 32, 48, 64, 100)
        )
        cross0 = fig.crossover_window(0)
        cross60 = fig.crossover_window(60)
        # DM at 1024 vs SWSM at 1024, md=60 (the paper's strong claim).
        dm_1024 = lab.dm_cycles(name, 1024, 60)
        swsm_1024 = lab.swsm_cycles(name, 1024, 60)
        ewrs = {}
        for dm_window in (32, 64):
            try:
                eq = find_equivalent_window(
                    lambda w: lab.swsm_cycles(name, w, 60),
                    lab.dm_cycles(name, dm_window, 60),
                    start=dm_window,
                )
                ewrs[dm_window] = eq / dm_window
            except ProjectionError:
                ewrs[dm_window] = float("nan")
        ewr32, ewr64 = ewrs[32], ewrs[64]
        lhe_text = " ".join(f"{v:.2f}" for v in lhe_row)
        print(
            f"{name:8s} LHE[8..256,unl]={lhe_text}  x0={cross0} x60={cross60} "
            f"dm/sw@1024md60={swsm_1024 / dm_1024:.2f} "
            f"ewr32={ewr32:.2f} ewr64={ewr64:.2f} "
            f"spd60(100)={fig.curve('DM', 60).at(100):.1f} "
            f"({time.time() - started:.0f}s)"
        )


if __name__ == "__main__":
    main()
