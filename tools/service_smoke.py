"""CI smoke check for the simulation service (see docs/service.md).

Boots `repro serve` in-process on an ephemeral port, drives one sweep
through the HTTP client, and asserts the rows coming back over HTTP
are byte-for-byte identical to the rows a direct Session produces for
the same points — the service is a transport, not a different answer.

Also exercises the observability surface (docs/observability.md): the
direct session runs under a JSONL span trace that must validate
cleanly, and the server's `/v1/metrics` endpoint must return
well-formed Prometheus text carrying queue-depth, job-state and
engine-counter samples.

Usage (CI runs it at tiny scale):

    REPRO_SCALE=tiny PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Session, Sweep  # noqa: E402
from repro.experiments import active_preset  # noqa: E402
from repro.obs.metrics import parse_prometheus  # noqa: E402
from repro.obs.trace import validate_trace  # noqa: E402
from repro.service import (  # noqa: E402
    ServiceClient,
    ServiceConfig,
    result_rows,
    start_server,
    stop_server,
)


def main() -> int:
    preset = active_preset()
    sweep = Sweep.grid(
        name="service-smoke",
        program="flo52q",
        machine=("dm", "swsm"),
        window=(8, 32),
        memory_differential=(0, 60),
    )

    with tempfile.TemporaryDirectory() as workdir:
        config = ServiceConfig(
            scale=preset.scale,
            workers=2,
            port=0,
            cache_dir=str(Path(workdir) / "cache"),
            store_path=str(Path(workdir) / "results.sqlite"),
        )
        server, _, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=600)
        try:
            health = client.health()
            assert health["status"] == "ok", health
            job_id = client.submit_sweep(sweep)
            payload = client.fetch(job_id, timeout=600)
            metrics_text = client.metrics()
        finally:
            stop_server(server)

        trace_path = Path(workdir) / "trace.jsonl"
        session = Session(scale=preset.scale, trace=trace_path)
        outcome = session.run(sweep)
        problems = validate_trace(trace_path)
        if problems:
            print("service smoke: FAIL — span trace is invalid")
            for problem in problems[:10]:
                print(f"  {problem}")
            return 1

    direct = result_rows(
        outcome.points, outcome.results, preset.scale, config.latencies
    )

    served = json.dumps(payload["rows"], sort_keys=True)
    expected = json.dumps(direct, sort_keys=True)
    if served != expected:
        print("service smoke: FAIL — served rows differ from direct Session")
        print(f"  served:   {served[:400]}")
        print(f"  expected: {expected[:400]}")
        return 1

    if not payload.get("telemetry", {}).get("runs"):
        print("service smoke: FAIL — fetch payload carries no job telemetry")
        return 1

    try:
        samples = parse_prometheus(metrics_text)
    except ValueError as error:
        print(f"service smoke: FAIL — /v1/metrics did not parse: {error}")
        return 1
    for required in (
        "repro_queue_depth",
        'repro_jobs{state="done"}',
    ):
        if required not in samples:
            print(
                f"service smoke: FAIL — /v1/metrics lacks {required!r}"
            )
            return 1
    if not any(k.startswith("repro_engine_counter_total") for k in samples):
        print("service smoke: FAIL — /v1/metrics lacks engine counters")
        return 1
    if not any(k.startswith("repro_http_requests_total") for k in samples):
        print("service smoke: FAIL — /v1/metrics lacks request counters")
        return 1

    print(
        f"service smoke: OK — {len(direct)} rows over HTTP byte-identical "
        f"to direct Session, {len(samples)} metric samples parsed, span "
        f"trace valid (scale={preset.name})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
