"""CI smoke check for the simulation service (see docs/service.md).

Boots `repro serve` in-process on an ephemeral port, drives one sweep
through the HTTP client, and asserts the rows coming back over HTTP
are byte-for-byte identical to the rows a direct Session produces for
the same points — the service is a transport, not a different answer.

Usage (CI runs it at tiny scale):

    REPRO_SCALE=tiny PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Session, Sweep  # noqa: E402
from repro.experiments import active_preset  # noqa: E402
from repro.service import (  # noqa: E402
    ServiceClient,
    ServiceConfig,
    result_rows,
    start_server,
    stop_server,
)


def main() -> int:
    preset = active_preset()
    sweep = Sweep.grid(
        name="service-smoke",
        program="flo52q",
        machine=("dm", "swsm"),
        window=(8, 32),
        memory_differential=(0, 60),
    )

    with tempfile.TemporaryDirectory() as workdir:
        config = ServiceConfig(
            scale=preset.scale,
            workers=2,
            port=0,
            cache_dir=str(Path(workdir) / "cache"),
            store_path=str(Path(workdir) / "results.sqlite"),
        )
        server, _, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=600)
        try:
            health = client.health()
            assert health["status"] == "ok", health
            job_id = client.submit_sweep(sweep)
            payload = client.fetch(job_id, timeout=600)
        finally:
            stop_server(server)

    session = Session(scale=preset.scale)
    outcome = session.run(sweep)
    direct = result_rows(
        outcome.points, outcome.results, preset.scale, config.latencies
    )

    served = json.dumps(payload["rows"], sort_keys=True)
    expected = json.dumps(direct, sort_keys=True)
    if served != expected:
        print("service smoke: FAIL — served rows differ from direct Session")
        print(f"  served:   {served[:400]}")
        print(f"  expected: {expected[:400]}")
        return 1

    print(
        f"service smoke: OK — {len(direct)} rows over HTTP byte-identical "
        f"to direct Session (scale={preset.name})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
