"""Figure 3 made quantitative: effective-single-window measurements.

Measures the mean/peak ESW of the three figure programs across memory
differentials and checks the paper's point — the two small windows act
like a single much larger one (amplification above 1 at md=60).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import FIGURE_PROGRAMS, render_table, run_esw_study


def test_esw_study(lab, benchmark):
    rows = run_once(
        benchmark,
        lambda: run_esw_study(lab, FIGURE_PROGRAMS, window=32,
                              differentials=(0, 20, 40, 60)),
    )
    print()
    print(render_table(
        ["Prog", "md", "mean ESW", "peak ESW", "x physical"],
        [
            [row.program, row.memory_differential, row.stats.mean,
             row.stats.peak, row.stats.amplification]
            for row in rows
        ],
        title="Effective single window (DM windows 32+32)",
    ))
    at_60 = [row for row in rows if row.memory_differential == 60]
    assert any(row.stats.amplification > 1.0 for row in at_60), (
        "no program's ESW exceeded the sum of the physical windows"
    )
