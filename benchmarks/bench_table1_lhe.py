"""Table 1: latency-hiding effectiveness of the DM at md=60.

Regenerates the LHE of all seven programs across the window ladder,
prints the table in the paper's layout, and checks the band grouping.
The band-fidelity assertions only hold from ``small`` scale upward;
the ``tiny`` smoke tier still regenerates everything but skips them
(traces that short have not reached their steady-state LHE).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import render_table, run_table1

#: Smallest preset whose traces are long enough for the paper's bands.
_FIDELITY_SCALES = ("small", "paper", "huge")


def test_table1(lab, preset, benchmark):
    result = run_once(benchmark, lambda: run_table1(lab))
    headers = ["Prog"] + [
        "unl" if window is None else str(window) for window in result.windows
    ] + ["band", "paper"]
    rows = [
        [row.program]
        + [row.lhe_by_window[window] for window in result.windows]
        + [row.measured_band, row.expected_band]
        for row in result.rows
    ]
    print()
    print(render_table(headers, rows,
                       title="Table 1: LHE for md=60 (DM)"))
    if preset.name in _FIDELITY_SCALES:
        assert result.bands_correct == len(result.rows), (
            "effectiveness bands diverged from the paper"
        )


def test_table1_band_boundaries(lab, preset, benchmark):
    """The three bands are separated at the unlimited window."""
    result = run_once(benchmark, lambda: run_table1(lab, windows=(None,)))
    by_band: dict[str, list[float]] = {"high": [], "moderate": [], "poor": []}
    for row in result.rows:
        by_band[row.expected_band].append(row.unlimited_lhe)
    print()
    for band, values in by_band.items():
        print(f"{band:9s}: " + " ".join(f"{v:.2f}" for v in sorted(values)))
    if preset.name in _FIDELITY_SCALES:
        assert min(by_band["high"]) > max(by_band["moderate"])
        assert min(by_band["moderate"]) > max(by_band["poor"])
