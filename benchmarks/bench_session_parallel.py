"""Executor benchmark: serial vs process-pool evaluation of a sweep.

Runs the same Fig-4-sized grid (DM + SWSM + serial over the preset's
window axis at md = 0 and 60) through three fresh sessions: one
serial, one with a process pool, and one that re-reads a warm disk
cache. The benchmark timer measures the serial run (so the artefact's
perf trajectory stays comparable); the parallel and cached timings are
printed alongside, with a parity check that all three agree
cycle-for-cycle.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.api import Session, speedup_sweep


def _fig4_sweep(preset):
    return speedup_sweep("flo52q", windows=preset.speedup_windows)


def test_session_parallel_speedup(preset, benchmark, tmp_path):
    sweep = _fig4_sweep(preset)
    jobs = min(4, os.cpu_count() or 1)

    serial_session = Session(scale=preset.scale)
    serial = run_once(benchmark, lambda: serial_session.run(sweep, jobs=1))

    parallel_session = Session(scale=preset.scale, cache_dir=tmp_path)
    start = time.perf_counter()
    parallel = parallel_session.run(sweep, jobs=jobs)
    parallel_seconds = time.perf_counter() - start

    cached_session = Session(scale=preset.scale, cache_dir=tmp_path)
    start = time.perf_counter()
    cached = cached_session.run(sweep, jobs=1)
    cached_seconds = time.perf_counter() - start

    assert serial.cycles() == parallel.cycles() == cached.cycles()
    assert cached_session.stats["evaluated"] == 0, "warm cache re-simulated"

    print()
    print(f"  sweep: {len(sweep)} points at scale={preset.scale}")
    print(f"  process pool (jobs={jobs}): {parallel_seconds:.2f}s "
          f"on {os.cpu_count()} cpu(s)")
    print(f"  warm disk cache: {cached_seconds:.3f}s "
          f"({cached_session.stats['disk_hits']} hits, 0 simulated)")
