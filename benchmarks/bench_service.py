"""Service load benchmark: requests/sec and latency, cold vs warm.

Boots ``repro serve`` in-process (ephemeral port) and drives the same
sweep through the HTTP client in three phases:

* **cold** — fresh result store and disk cache: the one job actually
  simulates; its end-to-end submit → fetch latency is the baseline;
* **warm** — the identical spec resubmitted many times: every request
  coalesces onto the finished job and is answered from memory, so this
  measures pure service overhead (requests/sec, p50/p90/p99 latency);
* **warm-restart** — a *new* server on the same store with an empty
  disk cache: rows are rehydrated from the store's payloads, proving
  finished results survive a restart without re-simulation (simulation
  is forcibly disabled during this phase).

Asserts the acceptance bar — warm throughput at least 10x cold at any
scale — and that a saturated queue answers 503 + ``Retry-After``
promptly instead of hanging. All three phases are recorded in
``BENCH_service.json`` alongside the engine trajectory.

Run as a script for the full printout::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import contextlib
import json
import tempfile
import time
from pathlib import Path

from conftest import run_once
from trajectory import record_service_rows

from repro.api import Sweep
from repro.api.session import Session
from repro.errors import QueueFullError
from repro.experiments import active_preset
from repro.service import ServiceClient, ServiceConfig, start_server, stop_server

#: Warm-phase round trips (each one submit + one fetch request).
WARM_ROUNDS = 25

#: The acceptance bar: warm requests/sec over cold requests/sec.
WARM_OVER_COLD = 10.0


def _sweep(name: str = "bench-service") -> Sweep:
    return Sweep.grid(
        name=name,
        program="flo52q",
        machine=("dm", "swsm"),
        window=(8, 16, 32),
        memory_differential=(0, 60),
    )


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5)
    )
    return sorted_values[index]


@contextlib.contextmanager
def _simulation_forbidden():
    """Fail loudly if anything tries to simulate inside the block."""
    original = Session._simulate

    def forbidden(self, canonical):
        raise AssertionError(
            "warm phase re-simulated a store-resident point"
        )

    Session._simulate = forbidden
    try:
        yield
    finally:
        Session._simulate = original


@contextlib.contextmanager
def _simulation_slowed(seconds: float):
    """Pad every fresh simulation, to hold a worker busy briefly."""
    original = Session._simulate

    def slowed(self, canonical):
        time.sleep(seconds)
        return original(self, canonical)

    Session._simulate = slowed
    try:
        yield
    finally:
        Session._simulate = original


def _round_trip(client: ServiceClient, sweep: Sweep) -> dict:
    job_id = client.submit_sweep(sweep)
    return client.fetch(job_id, timeout=600)


def _drive(scale: int, scale_name: str, workdir: Path, timer=None):
    """The three phases; returns (rows for the trajectory, cold rows)."""
    store_path = str(workdir / "results.sqlite")
    sweep = _sweep()
    requests_per_trip = 2  # submit + fetch (polls excluded on purpose)

    # -- cold: fresh store, fresh cache; the job simulates ------------------------
    config = ServiceConfig(
        scale=scale,
        workers=2,
        port=0,
        cache_dir=str(workdir / "cache"),
        store_path=store_path,
    )
    server, scheduler, _ = start_server(config)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=600)

    run = (lambda f: f()) if timer is None else timer
    start = time.perf_counter()
    cold_payload = run(lambda: _round_trip(client, sweep))
    cold_seconds = time.perf_counter() - start
    cold_rps = requests_per_trip / cold_seconds

    # -- warm: same server, same spec, many clients -------------------------------
    latencies = []
    warm_start = time.perf_counter()
    with _simulation_forbidden():
        for _ in range(WARM_ROUNDS):
            t0 = time.perf_counter()
            payload = _round_trip(client, sweep)
            latencies.append(time.perf_counter() - t0)
            assert payload["rows"] == cold_payload["rows"]
    warm_seconds = time.perf_counter() - warm_start
    warm_rps = (WARM_ROUNDS * requests_per_trip) / warm_seconds
    assert len(scheduler.jobs()) == 1, "warm requests spawned new jobs"
    stop_server(server)

    latencies.sort()
    percentiles = {
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p90_ms": round(_percentile(latencies, 0.90) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }

    # -- warm restart: new server, warm store, cold cache -------------------------
    restart_config = ServiceConfig(
        scale=scale,
        workers=2,
        port=0,
        cache_dir=str(workdir / "cache-restart"),
        store_path=store_path,
    )
    server2, _, _ = start_server(restart_config)
    host2, port2 = server2.server_address[:2]
    client2 = ServiceClient(f"http://{host2}:{port2}", timeout=600)
    with _simulation_forbidden():
        t0 = time.perf_counter()
        restart_payload = _round_trip(client2, sweep)
        restart_seconds = time.perf_counter() - t0
    stop_server(server2)
    assert restart_payload["rows"] == cold_payload["rows"]

    assert warm_rps >= WARM_OVER_COLD * cold_rps, (
        f"warm throughput {warm_rps:.1f} req/s is below "
        f"{WARM_OVER_COLD}x cold ({cold_rps:.3f} req/s)"
    )

    rows = [
        {
            "scale": scale_name, "phase": "cold",
            "points": len(sweep), "requests_per_s": round(cold_rps, 3),
            "latency_s": round(cold_seconds, 4),
        },
        {
            "scale": scale_name, "phase": "warm",
            "points": len(sweep), "requests_per_s": round(warm_rps, 1),
            **percentiles,
        },
        {
            "scale": scale_name, "phase": "warm-restart",
            "points": len(sweep),
            "requests_per_s": round(
                requests_per_trip / restart_seconds, 1
            ),
            "latency_s": round(restart_seconds, 4),
        },
    ]
    return rows, cold_payload


def _check_backpressure(scale: int) -> float:
    """Saturate a one-slot queue; returns the 503's Retry-After."""
    config = ServiceConfig(
        scale=scale, workers=1, queue_limit=1, port=0, retry_after=2
    )
    server, _, _ = start_server(config)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30)
    try:
        with _simulation_slowed(1.0):
            first = client.submit("point", {
                "program": "flo52q", "window": 4,
            })["id"]
            deadline = time.monotonic() + 30
            while client.job(first)["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            client.submit("point", {"program": "flo52q", "window": 5})
            refused_at = time.perf_counter()
            try:
                client.submit("point", {"program": "flo52q", "window": 6})
            except QueueFullError as error:
                answered_in = time.perf_counter() - refused_at
                assert error.status == 503
                assert error.retry_after == 2.0
                assert answered_in < 5.0, "503 took too long (hang?)"
                return error.retry_after
            raise AssertionError(
                "saturated queue accepted a job instead of answering 503"
            )
    finally:
        stop_server(server, timeout=60)


def test_service_load(benchmark, preset, tmp_path):
    rows, _ = _drive(
        preset.scale,
        preset.name,
        tmp_path,
        timer=lambda f: run_once(benchmark, f),
    )
    retry_after = _check_backpressure(preset.scale)
    record_service_rows(rows)
    print()
    for row in rows:
        print(f"  {row['phase']:<12} {row['requests_per_s']:>9} req/s  "
              f"{json.dumps({k: v for k, v in row.items() if k.endswith('_ms') or k.endswith('_s')})}")
    print(f"  backpressure: 503 + Retry-After {retry_after:.0f}s")


def main() -> int:
    preset = active_preset()
    with tempfile.TemporaryDirectory() as workdir:
        rows, _ = _drive(preset.scale, preset.name, Path(workdir))
    retry_after = _check_backpressure(preset.scale)
    record_service_rows(rows)
    print(f"service load at scale={preset.name} ({preset.scale}):")
    for row in rows:
        print(f"  {json.dumps(row)}")
    print(f"  backpressure: 503 + Retry-After {retry_after:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
