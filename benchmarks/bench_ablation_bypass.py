"""Ablation (future work §5): the bypass buffer.

The paper proposes a bypass that captures the temporal locality exposed
by decoupling. Reuse-heavy programs (MDG's shared molecules, DYFESM's
shared nodes) should benefit; a pure streaming program should not.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import render_table, run_bypass_ablation

PROGRAMS = ("mdg", "dyfesm", "flo52q")


def test_bypass_buffer(lab, benchmark):
    def sweep():
        return {
            program: run_bypass_ablation(lab, program)
            for program in PROGRAMS
        }

    by_program = run_once(benchmark, sweep)
    print()
    for program, points in by_program.items():
        print(render_table(
            ["entries", "cycles", "hit rate"],
            [[p.entries, p.cycles, p.hit_rate] for p in points],
            title=f"{program}: bypass buffer (md=60, window=32)",
        ))
    # Reuse-heavy programs gain from a large bypass.
    for program in ("mdg", "dyfesm"):
        points = by_program[program]
        baseline = points[0].cycles
        largest = points[-1]
        assert largest.hit_rate > 0.3, program
        assert largest.cycles < baseline, (
            f"{program}: bypass did not help ({largest.cycles} vs {baseline})"
        )
