"""Figure 6: speedup versus window size for TRACK.

Four curves — DM and SWSM at memory differentials of 0 and 60 — over
the paper's 0-100 window axis, with the crossover checks: the SWSM
overtakes at md=0 once its issue width is usable, and never at md=60.
"""

from __future__ import annotations

from conftest import run_once
from figure_helpers import (
    check_speedup_claims,
    print_speedup_figure,
    speedup_figure,
)


def test_fig6_track_speedup(lab, preset, benchmark):
    figure = run_once(benchmark, lambda: speedup_figure(lab, preset, "track"))
    print_speedup_figure(figure)
    check_speedup_claims(figure, track_like=True)
