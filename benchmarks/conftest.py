"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run pytest with ``-s``
to see them). The ``REPRO_SCALE`` environment variable picks the
fidelity preset (default: ``small``).

Each artefact is generated once per benchmark (``pedantic`` with one
round): the measurement of interest is the artefact itself plus the
wall-clock cost of regenerating it, not statistical timing noise.
"""

from __future__ import annotations

import pytest

from repro.experiments import ScalePreset, Session, active_preset


@pytest.fixture(scope="session")
def preset() -> ScalePreset:
    return active_preset()


@pytest.fixture(scope="session")
def lab(preset: ScalePreset) -> Session:
    return Session(scale=preset.scale)


def run_once(benchmark, func):
    """Run an artefact generator exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
