"""Figure 8: equivalent window ratio versus DM window for MDG.

For each memory differential, the SWSM window that matches the DM's
execution time, as a multiple of the DM window. The checks: ratios
grow with the differential and shrink as the DM window grows.
"""

from __future__ import annotations

from conftest import run_once
from figure_helpers import check_ewr_claims, ewr_figure, print_ewr_figure


def test_fig8_mdg_ewr(lab, preset, benchmark):
    figure = run_once(benchmark, lambda: ewr_figure(lab, preset, "mdg"))
    print_ewr_figure(figure)
    check_ewr_claims(figure)
