"""Benchmark-trajectory recording for the engine (``BENCH_engine.json``).

The engine benchmarks append their measured instructions-per-second
rows here so the repo carries a machine-readable perf trajectory from
PR to PR. Rows are upserted by ``(scale, machine, engine)``: re-running
a benchmark refreshes its numbers without touching the others.

The paper-artifact report folds this file into its engine-benchmark
page: ``repro report`` (``--bench BENCH_engine.json``) renders the
trajectory table alongside the paper artefacts, so the perf history is
part of the published site rather than a loose JSON blob.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def load_trajectory(path: Path = BENCH_PATH) -> dict:
    """The current trajectory payload (header + rows), or a fresh header.

    Tolerant of a missing or corrupt file — benchmarks must be able to
    rebuild the trajectory from scratch.
    """
    if path.exists():
        try:
            payload = json.loads(path.read_text())
            if isinstance(payload, dict):
                return payload
        except json.JSONDecodeError:
            pass
    payload = dict(_HEADER)
    payload["rows"] = []
    return payload

_HEADER = {
    "benchmark": "engine throughput, machine instructions per second",
    "kernel": "flo52q",
    "window": 32,
    "memory_differential": 60,
    "engines": {
        "soa": "struct-of-arrays engine (repro.machines.engine.simulate)",
        "objects": "pre-SoA object engine "
                   "(repro.machines.engine_objects.simulate_objects)",
        "events": "event-heap scheduler (REPRO_EVENT_ENGINE=events; "
                  "docs/timing.md, 'Event scheduling')",
        "probing": "per-cycle probing loop, probes off (the engine's "
                   "pre-event baseline for time-sensitive models)",
        "per-point": "scalar dispatch of a whole sweep axis, one "
                     "simulate() per operating point (the batch "
                     "engine's baseline; rows carry a 'lanes' field "
                     "with the axis width)",
        "batch": "batched sweep engine, every lane of the axis in one "
                 "SoA stepping loop (repro.machines.batch; rows carry "
                 "'lanes' and 'speedup_vs_per_point')",
    },
    "machines": {
        "dm": "access decoupled machine, fixed-differential memory",
        "swsm": "single-window superscalar, fixed-differential memory",
        "dm+<model>": "DM under a stateful memory model (bypass buffer, "
                      "cache hierarchy, banked memory, stream prefetcher); "
                      "rows carry a 'memory' field with the model "
                      "description",
    },
}


def record_engine_rows(rows: list[dict], path: Path = BENCH_PATH) -> dict:
    """Merge measurement rows into the JSON trajectory file."""
    payload = load_trajectory(path)
    merged = {
        (row["scale"], row["machine"], row["engine"]): row
        for row in payload.get("rows", ())
    }
    for row in rows:
        merged[(row["scale"], row["machine"], row["engine"])] = row
    payload.update(_HEADER)
    payload["updated"] = date.today().isoformat()
    payload["rows"] = [
        merged[key] for key in sorted(merged, key=_row_order)
    ]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


_SCALE_ORDER = {"tiny": 0, "small": 1, "paper": 2, "huge": 3}


def _row_order(key: tuple[str, str, str]):
    scale, machine, engine = key
    return (_SCALE_ORDER.get(scale, 99), scale, machine, engine)


# -- the service load benchmark (BENCH_service.json) -------------------------------

SERVICE_BENCH_PATH = BENCH_PATH.parent / "BENCH_service.json"

_SERVICE_HEADER = {
    "benchmark": "simulation-as-a-service load (benchmarks/bench_service.py)",
    "protocol": "HTTP submit -> poll -> fetch against `repro serve` "
                "booted in-process (stdlib ThreadingHTTPServer)",
    "phases": {
        "cold": "fresh result store and disk cache: the job simulates",
        "warm": "same sweep resubmitted: coalesced/served from the "
                "store, no re-simulation",
        "warm-restart": "fresh server process on the warm store: rows "
                        "rehydrated from store payloads",
    },
}


def record_service_rows(
    rows: list[dict], path: Path = SERVICE_BENCH_PATH
) -> dict:
    """Merge service load-benchmark rows (upsert by scale + phase)."""
    payload = load_trajectory(path)
    merged = {
        (row["scale"], row["phase"]): row
        for row in payload.get("rows", ())
        if "phase" in row
    }
    for row in rows:
        merged[(row["scale"], row["phase"])] = row
    payload.pop("rows", None)
    for stale in [key for key in payload if key not in _SERVICE_HEADER
                  and key != "updated"]:
        del payload[stale]
    payload.update(_SERVICE_HEADER)
    payload["updated"] = date.today().isoformat()
    payload["rows"] = [
        merged[key] for key in sorted(
            merged,
            key=lambda k: (_SCALE_ORDER.get(k[0], 99), k[0], k[1]),
        )
    ]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
