"""Old-vs-new engine throughput across the scale tiers.

Times the struct-of-arrays engine (``repro.machines.engine``) against
the preserved pre-SoA object engine
(``repro.machines.engine_objects``) on FLO52Q at the ``small``,
``paper`` and ``huge`` tiers — under the paper's fixed-differential
memory *and* under every stateful memory model (bypass buffer, cache
hierarchy, banked memory, stream prefetcher) — asserts the engines
produce identical schedules, and records every row in
``BENCH_engine.json``. The stateful tiers track how far the old
per-access fallback gap has closed: bypass-style models ride the
speculative schedule fixed point (docs/timing.md), the rest the
chunked issue-order path.

The event-heap tiers (``measure_events``) time the event scheduler
against the per-cycle probing loop on
dm+{banked,prefetch,hierarchy,banked-long} — the time-sensitive /
long-latency models it was built for — and assert it wins on the
long-latency ``banked-long`` tier at ``paper`` and ``huge`` scale.

Run the full comparison as a script::

    PYTHONPATH=src python benchmarks/bench_engine_soa.py

Under pytest only the active ``REPRO_SCALE`` tier is measured, so the
benchmark suite stays fast.
"""

from __future__ import annotations

import os
import time

from trajectory import record_engine_rows

from repro import DMConfig, DecoupledMachine, SWSMConfig, SuperscalarMachine
from repro.api.presets import HIERARCHY_MEMORY_VARIANTS
from repro.config import DEFAULT_LATENCIES, UnitConfig
from repro.experiments.scales import PRESETS
from repro.kernels import build_kernel
from repro.machines import simulate, simulate_objects
from repro.machines.engine import _simulate_probing
from repro.memory import BankedMemory, FixedLatencyMemory
from repro.partition import Unit

WINDOW = 32
MEMORY_DIFFERENTIAL = 60
SCALES = ("small", "paper", "huge")

#: Scales at which the event-heap tiers are measured by ``main`` and
#: at which the events-beat-probing assertion is enforced (tiny-scale
#: CI runs record rows but stay out of the noise).
EVENT_SCALES = ("paper", "huge")

#: The time-sensitive tiers the event engine targets, as memory
#: factories. ``banked-long`` stretches the banked model to
#: pointer-chase latencies (1200-cycle differential, two banks, long
#: bank occupancy) — the long-latency tier the events-beat-probing
#: assertion targets.
EVENT_MODELS = tuple(
    [
        (label, (lambda s: lambda: s.build(MEMORY_DIFFERENTIAL))(spec))
        for label, spec in HIERARCHY_MEMORY_VARIANTS
        if label in ("banked", "prefetch", "hierarchy")
    ]
    + [("banked-long", lambda: BankedMemory(extra=1200, banks=2, busy=64))]
)

#: The stateful models of the memory-hierarchy scenario space — the
#: exact configurations the hierarchy ablation preset ships, built at
#: ``MEMORY_DIFFERENTIAL`` (``fixed`` is the uniform tier above and
#: ``hierarchy`` duplicates ``cache`` structurally).
STATEFUL_MODELS = tuple(
    (label, (lambda s: lambda: s.build(MEMORY_DIFFERENTIAL))(spec))
    for label, spec in HIERARCHY_MEMORY_VARIANTS
    if label not in ("fixed", "hierarchy")
)


def _best_of(rounds: int, run) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def measure_scale(scale_name: str, rounds: int = 3) -> list[dict]:
    """Old-vs-new rows for DM and SWSM at one scale tier."""
    program = build_kernel("flo52q", PRESETS[scale_name].scale)
    dm = DecoupledMachine(DMConfig.symmetric(WINDOW))
    swsm = SuperscalarMachine(SWSMConfig(window=WINDOW))
    memory = FixedLatencyMemory(MEMORY_DIFFERENTIAL)
    variants = (
        (
            "dm",
            dm.compile(program),
            {Unit.AU: dm.config.au, Unit.DU: dm.config.du},
            lambda compiled: dm.run(
                compiled, memory_differential=MEMORY_DIFFERENTIAL
            ),
        ),
        (
            "swsm",
            swsm.compile(program),
            {Unit.SINGLE: UnitConfig(window=WINDOW, width=swsm.config.width,
                                     name="SWSM")},
            lambda compiled: swsm.run(
                compiled, memory_differential=MEMORY_DIFFERENTIAL
            ),
        ),
    )
    rows = []
    for machine_name, compiled, configs, run_new in variants:
        new_result = run_new(compiled)  # warm the lowering cache
        old_result = simulate_objects(compiled, configs, memory)
        assert new_result.cycles == old_result.cycles, (
            f"engines disagree on {machine_name}@{scale_name}: "
            f"{new_result.cycles} vs {old_result.cycles}"
        )
        instructions = compiled.num_instructions
        new_seconds = _best_of(rounds, lambda: run_new(compiled))
        old_seconds = _best_of(
            max(1, rounds - 1),
            lambda: simulate_objects(compiled, configs, memory),
        )
        base = {
            "scale": scale_name,
            "machine": machine_name,
            "instructions": instructions,
            "cycles": new_result.cycles,
        }
        rows.append({
            **base,
            "engine": "objects",
            "seconds": round(old_seconds, 6),
            "ips": round(instructions / old_seconds),
        })
        rows.append({
            **base,
            "engine": "soa",
            "seconds": round(new_seconds, 6),
            "ips": round(instructions / new_seconds),
            "speedup_vs_objects": round(old_seconds / new_seconds, 2),
        })
    return rows


def measure_stateful(scale_name: str, rounds: int = 3) -> list[dict]:
    """Old-vs-new rows for the DM under every stateful memory model."""
    program = build_kernel("flo52q", PRESETS[scale_name].scale)
    dm = DecoupledMachine(DMConfig.symmetric(WINDOW))
    compiled = dm.compile(program)
    compiled.lowered()
    configs = {Unit.AU: dm.config.au, Unit.DU: dm.config.du}
    instructions = compiled.num_instructions
    rows = []
    for label, make_memory in STATEFUL_MODELS:
        new_result = simulate(compiled, configs, make_memory())
        old_result = simulate_objects(compiled, configs, make_memory())
        assert new_result.cycles == old_result.cycles, (
            f"engines disagree on dm+{label}@{scale_name}: "
            f"{new_result.cycles} vs {old_result.cycles}"
        )
        new_seconds = _best_of(
            rounds, lambda: simulate(compiled, configs, make_memory())
        )
        old_seconds = _best_of(
            max(1, rounds - 1),
            lambda: simulate_objects(compiled, configs, make_memory()),
        )
        base = {
            "scale": scale_name,
            "machine": f"dm+{label}",
            "memory": make_memory().describe(),
            "instructions": instructions,
            "cycles": new_result.cycles,
        }
        rows.append({
            **base,
            "engine": "objects",
            "seconds": round(old_seconds, 6),
            "ips": round(instructions / old_seconds),
        })
        rows.append({
            **base,
            "engine": "soa",
            "seconds": round(new_seconds, 6),
            "ips": round(instructions / new_seconds),
            "speedup_vs_objects": round(old_seconds / new_seconds, 2),
        })
    return rows


def measure_events(scale_name: str, rounds: int = 3) -> list[dict]:
    """Event-heap scheduler vs the per-cycle probing loop.

    Covers the dm+{banked,prefetch,hierarchy,banked-long} tiers: the
    models with long or irregular stateful latencies the event engine
    was built for. The probing loop runs with probes off, so the
    comparison is pure scheduling strategy; rounds are interleaved
    (one event run, one probing run, repeat) so clock drift hits both
    engines equally. On the long-latency ``banked-long`` tier at
    ``EVENT_SCALES`` the event engine must measurably win; every tier
    additionally asserts cycle parity.
    """
    program = build_kernel("flo52q", PRESETS[scale_name].scale)
    dm = DecoupledMachine(DMConfig.symmetric(WINDOW))
    compiled = dm.compile(program)
    low = compiled.lowered()
    configs = {Unit.AU: dm.config.au, Unit.DU: dm.config.du}
    instructions = compiled.num_instructions
    rows = []
    previous = os.environ.get("REPRO_EVENT_ENGINE")
    os.environ["REPRO_EVENT_ENGINE"] = "events"
    try:
        for label, make_memory in EVENT_MODELS:
            def run_probing(memory):
                return _simulate_probing(
                    low, compiled, configs, memory, DEFAULT_LATENCIES,
                    False, False, False, None,
                )

            event_result = simulate(compiled, configs, make_memory())
            probing_result = run_probing(make_memory())
            assert event_result.cycles == probing_result.cycles, (
                f"engines disagree on dm+{label}@{scale_name}: "
                f"{event_result.cycles} vs {probing_result.cycles}"
            )
            event_seconds = probing_seconds = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                simulate(compiled, configs, make_memory())
                event_seconds = min(
                    event_seconds, time.perf_counter() - start
                )
                start = time.perf_counter()
                run_probing(make_memory())
                probing_seconds = min(
                    probing_seconds, time.perf_counter() - start
                )
            if label == "banked-long" and scale_name in EVENT_SCALES:
                assert event_seconds < probing_seconds, (
                    f"event engine lost to the probing loop on the "
                    f"long-latency banked tier @ {scale_name}: "
                    f"{event_seconds:.4f}s vs {probing_seconds:.4f}s"
                )
            base = {
                "scale": scale_name,
                "machine": f"dm+{label}",
                "memory": make_memory().describe(),
                "instructions": instructions,
                "cycles": event_result.cycles,
            }
            rows.append({
                **base,
                "engine": "probing",
                "seconds": round(probing_seconds, 6),
                "ips": round(instructions / probing_seconds),
            })
            rows.append({
                **base,
                "engine": "events",
                "seconds": round(event_seconds, 6),
                "ips": round(instructions / event_seconds),
                "speedup_vs_probing": round(
                    probing_seconds / event_seconds, 2
                ),
            })
    finally:
        if previous is None:
            del os.environ["REPRO_EVENT_ENGINE"]
        else:
            os.environ["REPRO_EVENT_ENGINE"] = previous
    return rows


def test_soa_engine_matches_and_records(preset):
    """Parity plus one recorded tier (the active ``REPRO_SCALE``)."""
    scale_name = preset.name if preset.name in PRESETS else "small"
    rows = measure_scale(scale_name, rounds=2)
    rows.extend(measure_stateful(scale_name, rounds=2))
    record_engine_rows(rows)
    for row in rows:
        if row["engine"] == "soa":
            print(
                f"\n{row['machine']}@{row['scale']}: "
                f"{row['ips'] / 1e6:.2f}M inst/s, "
                f"{row['speedup_vs_objects']:.1f}x over the object engine"
            )


def test_event_engine_tiers_recorded(preset):
    """Event-heap tiers for the active scale, recorded in the
    trajectory; the events-beat-probing assertion arms at paper+."""
    scale_name = preset.name if preset.name in PRESETS else "small"
    rows = measure_events(scale_name, rounds=2)
    record_engine_rows(rows)
    for row in rows:
        if row["engine"] == "events":
            print(
                f"\n{row['machine']}@{row['scale']}: "
                f"{row['ips'] / 1e6:.2f}M inst/s, "
                f"{row['speedup_vs_probing']:.1f}x over the probing loop"
            )


def main() -> None:
    all_rows = []
    for scale_name in SCALES:
        all_rows.extend(measure_scale(scale_name))
        all_rows.extend(measure_stateful(scale_name))
    for scale_name in EVENT_SCALES:
        all_rows.extend(measure_events(scale_name))
    record_engine_rows(all_rows)
    print(f"{'scale':8} {'machine':12} {'old ips':>12} {'new ips':>12} "
          f"{'speedup':>8}")
    by_key = {(r["scale"], r["machine"], r["engine"]): r for r in all_rows}
    machines = ["dm", "swsm"] + [f"dm+{label}" for label, _ in STATEFUL_MODELS]
    for scale_name in SCALES:
        for machine_name in machines:
            old = by_key[(scale_name, machine_name, "objects")]
            new = by_key[(scale_name, machine_name, "soa")]
            print(f"{scale_name:8} {machine_name:12} {old['ips']:>12,} "
                  f"{new['ips']:>12,} {new['speedup_vs_objects']:>7.1f}x")
    print(f"\n{'scale':8} {'machine':14} {'probing ips':>12} "
          f"{'events ips':>12} {'speedup':>8}")
    for scale_name in EVENT_SCALES:
        for label, _ in EVENT_MODELS:
            machine_name = f"dm+{label}"
            probing = by_key[(scale_name, machine_name, "probing")]
            events = by_key[(scale_name, machine_name, "events")]
            print(f"{scale_name:8} {machine_name:14} {probing['ips']:>12,} "
                  f"{events['ips']:>12,} "
                  f"{events['speedup_vs_probing']:>7.1f}x")


if __name__ == "__main__":
    main()
