"""Batched sweep engine vs per-point dispatch along a sweep axis.

Times :func:`repro.machines.batch.simulate_batch` against the scalar
per-point loop on the paper's densest sweep axis: one memory
differential per cycle from 12 to 267 (256 operating points — the
EWR-curve axis of Figures 7-9 at single-cycle resolution) over FLO52Q
at window 32, for the decoupled machine and the single-window
superscalar. Every run asserts the batched results are bit-identical
to the per-point results before any timing is recorded, and the rows
land in ``BENCH_engine.json`` next to the engine-strategy tiers.

At ``BATCH_SCALES`` the batch engine must clear ``MIN_SPEEDUP`` x the
per-point wall clock — the vectorization win the batch engine exists
for; smaller tiers (tiny-scale CI smoke runs) record rows but stay
out of the noise.

Run the full comparison as a script::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py

Under pytest only the active ``REPRO_SCALE`` tier is measured, so the
benchmark suite stays fast.
"""

from __future__ import annotations

import time

import pytest

from trajectory import record_engine_rows

from repro import DMConfig, DecoupledMachine, SWSMConfig, SuperscalarMachine
from repro.config import UnitConfig
from repro.experiments.scales import PRESETS
from repro.kernels import build_kernel
from repro.machines import simulate
from repro.machines.batch import BatchLane, simulate_batch
from repro.memory import FixedLatencyMemory
from repro.partition import Unit

np = pytest.importorskip("numpy")

WINDOW = 32
#: The sweep axis: every memory differential from `MD_LO` up to but
#: not including `MD_HI`, one lane per cycle of differential.
MD_LO, MD_HI = 12, 268
SCALES = ("small", "paper", "huge")

#: Scales at which the batch-beats-per-point assertion is enforced.
BATCH_SCALES = ("paper", "huge")

#: Required sweep-axis speedup of the batched loop over per-point
#: dispatch at ``BATCH_SCALES``.
MIN_SPEEDUP = 3.0


def _machines():
    dm = DecoupledMachine(DMConfig.symmetric(WINDOW))
    swsm = SuperscalarMachine(SWSMConfig(window=WINDOW))
    return (
        ("dm", dm, {Unit.AU: dm.config.au, Unit.DU: dm.config.du}),
        (
            "swsm",
            swsm,
            {
                Unit.SINGLE: UnitConfig(
                    window=WINDOW, width=swsm.config.width, name="SWSM"
                )
            },
        ),
    )


def measure_batch(scale_name: str, rounds: int = 3) -> list[dict]:
    """Per-point vs batched sweep rows for DM and SWSM at one tier."""
    program = build_kernel("flo52q", PRESETS[scale_name].scale)
    differentials = range(MD_LO, MD_HI)
    lanes = len(differentials)
    rows = []
    for machine_name, machine, configs in _machines():
        compiled = machine.compile(program)
        compiled.lowered().steady()  # warm the shared lowering
        instructions = compiled.num_instructions

        def run_per_point():
            return [
                simulate(compiled, configs, FixedLatencyMemory(md))
                for md in differentials
            ]

        def run_batch():
            return simulate_batch(compiled, [
                BatchLane(
                    unit_configs=configs, memory=FixedLatencyMemory(md)
                )
                for md in differentials
            ])

        want = run_per_point()
        got = run_batch()
        assert got == want, (
            f"batched sweep diverged from per-point dispatch on "
            f"{machine_name}@{scale_name}"
        )
        point_seconds = batch_seconds = float("inf")
        # Interleave rounds so clock drift hits both paths equally.
        for _ in range(rounds):
            start = time.perf_counter()
            run_per_point()
            point_seconds = min(
                point_seconds, time.perf_counter() - start
            )
            start = time.perf_counter()
            run_batch()
            batch_seconds = min(
                batch_seconds, time.perf_counter() - start
            )
        speedup = point_seconds / batch_seconds
        if scale_name in BATCH_SCALES:
            assert speedup >= MIN_SPEEDUP, (
                f"batched sweep only {speedup:.2f}x over per-point "
                f"dispatch on {machine_name}@{scale_name} "
                f"({batch_seconds:.3f}s vs {point_seconds:.3f}s for "
                f"{lanes} lanes); need {MIN_SPEEDUP}x"
            )
        base = {
            "scale": scale_name,
            "machine": machine_name,
            "instructions": instructions,
            "cycles": want[0].cycles,
            "lanes": lanes,
        }
        rows.append({
            **base,
            "engine": "per-point",
            "seconds": round(point_seconds, 6),
            "ips": round(instructions * lanes / point_seconds),
        })
        rows.append({
            **base,
            "engine": "batch",
            "seconds": round(batch_seconds, 6),
            "ips": round(instructions * lanes / batch_seconds),
            "speedup_vs_per_point": round(speedup, 2),
        })
    return rows


def test_batch_engine_matches_and_records(preset):
    """Sweep parity plus one recorded tier (the active ``REPRO_SCALE``);
    the batch-beats-per-point assertion arms at paper+."""
    scale_name = preset.name if preset.name in PRESETS else "small"
    rounds = 3 if scale_name in BATCH_SCALES else 2
    rows = measure_batch(scale_name, rounds=rounds)
    record_engine_rows(rows)
    for row in rows:
        if row["engine"] == "batch":
            print(
                f"\n{row['machine']}@{row['scale']}: "
                f"{row['lanes']}-lane sweep in {row['seconds']:.3f}s, "
                f"{row['speedup_vs_per_point']:.1f}x over per-point "
                f"dispatch"
            )


def main() -> None:
    all_rows = []
    for scale_name in SCALES:
        all_rows.extend(measure_batch(scale_name))
    record_engine_rows(all_rows)
    print(f"{'scale':8} {'machine':8} {'lanes':>6} {'per-point':>10} "
          f"{'batch':>10} {'speedup':>8}")
    by_key = {(r["scale"], r["machine"], r["engine"]): r for r in all_rows}
    for scale_name in SCALES:
        for machine_name in ("dm", "swsm"):
            point = by_key[(scale_name, machine_name, "per-point")]
            batch = by_key[(scale_name, machine_name, "batch")]
            print(f"{scale_name:8} {machine_name:8} {batch['lanes']:>6} "
                  f"{point['seconds']:>9.3f}s {batch['seconds']:>9.3f}s "
                  f"{batch['speedup_vs_per_point']:>7.1f}x")


if __name__ == "__main__":
    main()
