"""Ablation (future work §6): how the code is divided between the units.

Compares the paper's slice partition against a memory-only partition
(all address arithmetic on the DU) and a balance-driven variant — the
static-versus-alternative-partition question the paper defers.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import render_table, run_partition_ablation

PROGRAMS = ("trfd", "flo52q", "track")


def test_partition_strategies(lab, benchmark):
    def sweep():
        return {
            program: run_partition_ablation(lab, program)
            for program in PROGRAMS
        }

    by_program = run_once(benchmark, sweep)
    print()
    for program, points in by_program.items():
        print(render_table(
            ["strategy", "cycles", "AU instrs", "DU instrs"],
            [[p.strategy, p.cycles, p.au_instructions, p.du_instructions]
             for p in points],
            title=f"{program}: partition strategies (md=60, window=32)",
        ))
        by_name = {p.strategy: p.cycles for p in points}
        # Slicing is what makes decoupling work: the degenerate
        # memory-only partition must be far slower.
        assert by_name["slice"] < by_name["memory-only"], program
        assert by_name["balanced"] <= by_name["memory-only"], program
