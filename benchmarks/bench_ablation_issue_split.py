"""Ablation: dividing the combined issue width of 9 between AU and DU.

The paper adopts the 4+5 split, citing a companion study that found it
optimal. Two regimes:

* at md=0 the machine is throughput-bound, so the optimum reflects the
  AU/DU instruction balance and sits near the paper's 4+5;
* at md=60 with a small window the AU's ability to pipeline gated
  accesses dominates, which skews the optimum AU-ward — the sweep
  prints both so the shift is visible.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import render_table, run_issue_split_ablation

PROGRAMS = ("trfd", "flo52q", "mdg")


def test_issue_split(lab, benchmark):
    def sweep():
        return {
            (program, md): run_issue_split_ablation(
                lab, program, memory_differential=md
            )
            for program in PROGRAMS
            for md in (0, 60)
        }

    results = run_once(benchmark, sweep)
    print()
    for program in PROGRAMS:
        md0 = results[(program, 0)]
        md60 = results[(program, 60)]
        print(render_table(
            ["AU", "DU", "cycles md=0", "cycles md=60"],
            [
                [a.au_width, a.du_width, a.cycles, b.cycles]
                for a, b in zip(md0, md60)
            ],
            title=f"{program}: issue split at CIW=9 (window=32)",
        ))
        best_md0 = min(md0, key=lambda p: p.cycles)
        print(f"  best split at md=0: {best_md0.au_width}+{best_md0.du_width}")
        # Throughput-bound regime: the optimum is near the paper's 4+5.
        assert 3 <= best_md0.au_width <= 5, (
            f"{program}: md=0 optimum {best_md0.au_width}+"
            f"{best_md0.du_width} is not near 4+5"
        )
        # Extreme splits are always bad.
        for points in (md0, md60):
            best = min(p.cycles for p in points)
            by_width = {p.au_width: p.cycles for p in points}
            assert best < by_width[1]
            assert best < by_width[8]
