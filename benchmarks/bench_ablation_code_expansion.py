"""Ablation (future work §6): code expansion on the DM and the SWSM.

Loop unrolling and software pipelining add bookkeeping instructions;
the paper defers studying how that overhead affects the two machines.
Expansion dilutes the memory work, so it costs issue bandwidth on both;
the check is that neither machine degrades pathologically and the DM's
md=60 advantage survives moderate expansion.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import render_table, run_code_expansion_ablation

PROGRAMS = ("flo52q", "mdg")


def test_code_expansion(lab, benchmark):
    def sweep():
        return {
            program: run_code_expansion_ablation(lab, program)
            for program in PROGRAMS
        }

    by_program = run_once(benchmark, sweep)
    print()
    for program, points in by_program.items():
        print(render_table(
            ["overhead", "DM cycles", "SWSM cycles", "SWSM/DM"],
            [[f"{p.fraction:.0%}", p.dm_cycles, p.swsm_cycles,
              p.dm_over_swsm] for p in points],
            title=f"{program}: code expansion (md=60, window=32)",
        ))
        base = points[0]
        half = points[-1]
        assert half.dm_cycles >= base.dm_cycles
        assert half.swsm_cycles >= base.swsm_cycles
        # The DM's advantage survives 50% bookkeeping overhead.
        assert half.dm_over_swsm > 1.0, program
