"""Simulator throughput: instructions simulated per second.

Not a paper artefact — this times the event-driven engine itself, the
substrate every other benchmark stands on. Uses normal multi-round
pytest-benchmark statistics (the run is deterministic and cheap).
"""

from __future__ import annotations

import pytest

from repro import DecoupledMachine, DMConfig, SuperscalarMachine, SWSMConfig
from repro.kernels import build_kernel


@pytest.fixture(scope="module")
def flo52q_program():
    return build_kernel("flo52q", 10_000)


def test_dm_engine_throughput(flo52q_program, benchmark):
    machine = DecoupledMachine(DMConfig.symmetric(32))
    compiled = machine.compile(flo52q_program)
    result = benchmark(
        lambda: machine.run(compiled, memory_differential=60)
    )
    rate = compiled.num_instructions / benchmark.stats["mean"]
    print(f"\nDM: {rate / 1e3:.0f}k machine instructions / second "
          f"({result.cycles} cycles simulated)")


def test_swsm_engine_throughput(flo52q_program, benchmark):
    machine = SuperscalarMachine(SWSMConfig(window=32))
    compiled = machine.compile(flo52q_program)
    result = benchmark(
        lambda: machine.run(compiled, memory_differential=60)
    )
    rate = compiled.num_instructions / benchmark.stats["mean"]
    print(f"\nSWSM: {rate / 1e3:.0f}k machine instructions / second "
          f"({result.cycles} cycles simulated)")


def test_compile_throughput(flo52q_program, benchmark):
    benchmark(lambda: DecoupledMachine.compile(flo52q_program))
