"""Simulator throughput: instructions simulated per second.

Not a paper artefact — this times the struct-of-arrays engine itself,
the substrate every other benchmark stands on, at the scale tier
selected by ``REPRO_SCALE`` (``small``, ``paper`` or ``huge``). Uses
normal multi-round pytest-benchmark statistics (the run is
deterministic and cheap) and records the measured rates into
``BENCH_engine.json`` so the perf trajectory is tracked across PRs;
``bench_engine_soa.py`` adds the old-vs-new comparison rows.
"""

from __future__ import annotations

import pytest

from trajectory import record_engine_rows

from repro import DecoupledMachine, DMConfig, SuperscalarMachine, SWSMConfig
from repro.kernels import build_kernel


@pytest.fixture(scope="module")
def flo52q_program(preset):
    return build_kernel("flo52q", preset.scale)


def _record(preset, machine_name, compiled, result, seconds):
    record_engine_rows([{
        "scale": preset.name,
        "machine": machine_name,
        "engine": "soa",
        "instructions": compiled.num_instructions,
        "cycles": result.cycles,
        "seconds": round(seconds, 6),
        "ips": round(compiled.num_instructions / seconds),
    }])


def test_dm_engine_throughput(flo52q_program, preset, benchmark):
    machine = DecoupledMachine(DMConfig.symmetric(32))
    compiled = machine.compile(flo52q_program)
    result = benchmark(
        lambda: machine.run(compiled, memory_differential=60)
    )
    seconds = benchmark.stats["mean"]
    rate = compiled.num_instructions / seconds
    _record(preset, "dm", compiled, result, seconds)
    print(f"\nDM: {rate / 1e3:.0f}k machine instructions / second "
          f"({result.cycles} cycles simulated)")


def test_swsm_engine_throughput(flo52q_program, preset, benchmark):
    machine = SuperscalarMachine(SWSMConfig(window=32))
    compiled = machine.compile(flo52q_program)
    result = benchmark(
        lambda: machine.run(compiled, memory_differential=60)
    )
    seconds = benchmark.stats["mean"]
    rate = compiled.num_instructions / seconds
    _record(preset, "swsm", compiled, result, seconds)
    print(f"\nSWSM: {rate / 1e3:.0f}k machine instructions / second "
          f"({result.cycles} cycles simulated)")


def test_compile_throughput(flo52q_program, benchmark):
    benchmark(lambda: DecoupledMachine.compile(flo52q_program))


def test_lowering_throughput(flo52q_program, benchmark):
    """Cost of the one-time struct-of-arrays lowering pass."""
    from repro.machines import lower_program

    compiled = DecoupledMachine.compile(flo52q_program)
    benchmark(lambda: lower_program(compiled))
