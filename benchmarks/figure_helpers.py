"""Shared rendering/assertion helpers for the figure benchmarks."""

from __future__ import annotations

from repro.experiments import (
    EwrFigure,
    SpeedupFigure,
    render_plot,
    run_ewr_figure,
    run_speedup_figure,
)


def speedup_figure(lab, preset, program: str) -> SpeedupFigure:
    return run_speedup_figure(lab, program, windows=preset.speedup_windows)


def print_speedup_figure(figure: SpeedupFigure) -> None:
    series = {
        f"{curve.machine} md={curve.memory_differential}": curve.speedups
        for curve in figure.curves
    }
    print()
    print(render_plot(
        figure.windows, series,
        title=f"{figure.program.upper()} CIW=9 (speedup vs window size)",
        x_label="window size",
    ))
    for md in (0, 60):
        crossover = figure.crossover_window(md)
        text = "none" if crossover is None else str(crossover)
        print(f"  md={md}: SWSM overtakes at window {text}")


def check_speedup_claims(figure: SpeedupFigure, track_like: bool) -> None:
    """The paper's two headline orderings for figures 4-6."""
    smallest = figure.windows[0]
    dm0 = figure.curve("DM", 0)
    swsm0 = figure.curve("SWSM", 0)
    assert dm0.at(smallest) > swsm0.at(smallest), (
        "DM should win at small windows at md=0"
    )
    dm60 = figure.curve("DM", 60)
    swsm60 = figure.curve("SWSM", 60)
    tolerance = 1.02 if track_like else 1.0
    for window in figure.windows:
        assert swsm60.at(window) <= dm60.at(window) * tolerance, (
            f"SWSM beat the DM at md=60, window {window}"
        )


def ewr_figure(lab, preset, program: str) -> EwrFigure:
    return run_ewr_figure(
        lab, program,
        dm_windows=preset.ewr_windows,
        differentials=preset.ewr_differentials,
    )


def print_ewr_figure(figure: EwrFigure) -> None:
    series = {
        f"md={curve.memory_differential}": curve.ratios
        for curve in figure.curves
    }
    print()
    print(render_plot(
        figure.dm_windows, series,
        title=f"{figure.program.upper()} (equivalent window ratio)",
        x_label="access decoupled window size",
    ))


def check_ewr_claims(figure: EwrFigure) -> None:
    """Ratios grow with md and fall with the DM window."""
    first_window = figure.dm_windows[0]
    last_window = figure.dm_windows[-1]
    lowest = figure.curves[0]
    highest = figure.curves[-1]
    assert highest.at(first_window) > lowest.at(first_window)
    assert highest.at(last_window) < highest.at(first_window)
