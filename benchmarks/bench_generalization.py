"""Generalization study: the paper's conclusions beyond its seven kernels.

Generates a small corpus from the loop-nest grammar (5 kernels, one
each from the first five access-pattern families), verifies it
regenerates bit-identically, simulates every kernel on both machines,
and prints the band-classification table — the CI benchmark smoke
step runs exactly this at tiny scale. The structural assertions hold
at every scale: a pointer chase can never hide latency, and a clean
streaming kernel always can.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import render_table
from repro.experiments.generalization import run_generalization_study
from repro.workloads import generate_corpus, verify_corpus

#: The CI smoke corpus: generate-and-simulate five kernels.
_SMOKE_SIZE = 5


def test_generalization_smoke_corpus(lab, preset, benchmark):
    corpus = generate_corpus(_SMOKE_SIZE, seed=0, scale=preset.scale,
                             name=f"smoke-{_SMOKE_SIZE}")
    assert verify_corpus(corpus) == []
    result = run_once(
        benchmark, lambda: run_generalization_study(lab, corpus)
    )
    rows = [
        [row.name, row.family, row.predicted_band, f"{row.dm_lhe:.3f}",
         f"{row.swsm_lhe:.3f}", row.dm_band,
         "yes" if row.structure_holds else "no"]
        for row in result.rows
    ]
    print()
    print(render_table(
        ["kernel", "family", "pred", "DM LHE", "SWSM LHE", "DM band",
         "holds"],
        rows,
        title=f"Generalization smoke corpus (scale={preset.name})",
    ))
    assert result.kernels == _SMOKE_SIZE
    for row in result.rows:
        assert 0.0 < row.dm_lhe <= 1.0
        assert 0.0 < row.swsm_lhe <= 1.0


def test_generalization_family_extremes(lab, preset, benchmark):
    """Chases never hide latency; clean streams always do."""
    names = ("gen:chase:1", "gen:chase:2", "gen:streaming:0")
    result = run_once(
        benchmark, lambda: run_generalization_study(lab, list(names))
    )
    by_name = {row.name: row for row in result.rows}
    for name in ("gen:chase:1", "gen:chase:2"):
        assert by_name[name].dm_band == "poor"
    assert by_name["gen:streaming:0"].dm_lhe > 0.5
